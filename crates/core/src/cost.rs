//! The cache cost model (§4.1).
//!
//! Under the unit-time cost metric, with `d_ij` the tuples per unit time
//! processed by operator `./_ij` and `c_ij` its per-tuple cost:
//!
//! ```text
//! benefit(C_ijk) = Σ_{l=j..k} d_il·c_il
//!                − d_ij × probe_cost(C_ijk)
//!                − miss_prob(C_ijk) × (Σ_{l=j..k} d_il·c_il + d_{i,k+1} × update_cost(C_ijk))
//!
//! cost(C_ijk)    = update_cost(C_ijk) × Σ_{l=j..k} d_{l,k−j+1}
//!
//! proc(C_ijk)    = d_ij × probe_cost + miss_prob × (Σ d_il·c_il + d_{i,k+1} × update_cost)
//! ```
//!
//! so that maximizing `Σ benefit − cost` over a nonoverlapping candidate set
//! equals minimizing `Σ proc + cost` with uncovered operators charged their
//! raw `d_ij·c_ij` (§4.4). `probe_cost` and `update_cost` derive from the
//! cache implementation (§3.3): key size (constant per cache) and the
//! average number of tuples per cached entry `d_{i,k+1} / d_ij`.

use acq_mjoin::clock::CostModel;

/// Online estimates for one candidate cache, in unit-time terms.
#[derive(Debug, Clone, Copy, Default)]
pub struct CandidateEstimates {
    /// `d_ij`: tuples per unit time reaching the segment's first operator.
    pub d_in: f64,
    /// `d_{i,k+1}`: tuples per unit time leaving the segment.
    pub d_out: f64,
    /// `Σ_{l=j..k} d_il·c_il`: virtual ns per unit time spent in the segment
    /// without the cache.
    pub seg_proc: f64,
    /// Estimated miss probability.
    pub miss_prob: f64,
    /// `Σ_l d_{l,tap}`: maintenance deltas per unit time (updates to the
    /// cached subresult computed by the segment relations' pipelines).
    pub maint_rate: f64,
    /// Estimated number of distinct keys the cache would hold.
    pub expected_entries: f64,
}

impl CandidateEstimates {
    /// Average tuples per cached entry, `d_{i,k+1} / d_ij` (Appendix A).
    pub fn avg_entry_tuples(&self) -> f64 {
        if self.d_in <= 0.0 {
            0.0
        } else {
            self.d_out / self.d_in
        }
    }
}

/// The derived benefit/cost/proc triple for one candidate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BenefitCost {
    /// `benefit(C)`: saved ns per unit time when using the cache.
    pub benefit: f64,
    /// `cost(C)`: maintenance ns per unit time.
    pub cost: f64,
    /// `proc(C)`: ns per unit time of *using* the cache in its pipeline
    /// (excludes maintenance).
    pub proc: f64,
}

impl BenefitCost {
    /// Net gain `benefit − cost`.
    pub fn net(&self) -> f64 {
        self.benefit - self.cost
    }

    /// Emit this triple into a snapshot as `{prefix}.benefit`,
    /// `{prefix}.cost`, `{prefix}.proc`, and `{prefix}.net` ratios (over a
    /// denominator of 1, so a cross-shard merge yields the per-shard
    /// average of these intensive unit-time quantities).
    pub fn snapshot_into(
        &self,
        s: &mut acq_telemetry::TelemetrySnapshot,
        prefix: &str,
        labels: &[(&str, &str)],
    ) {
        s.ratio(&format!("{prefix}.benefit"), labels, self.benefit, 1.0);
        s.ratio(&format!("{prefix}.cost"), labels, self.cost, 1.0);
        s.ratio(&format!("{prefix}.proc"), labels, self.proc, 1.0);
        s.ratio(&format!("{prefix}.net"), labels, self.net(), 1.0);
    }

    /// Largest relative change of any component versus `other` — drives the
    /// §4.5(c) re-optimization trigger (`p = 20%` by default).
    pub fn max_relative_change(&self, other: &BenefitCost) -> f64 {
        fn rc(a: f64, b: f64) -> f64 {
            let d = a.abs().max(b.abs());
            if d < 1e-9 {
                0.0
            } else {
                (a - b).abs() / d
            }
        }
        rc(self.benefit, other.benefit)
            .max(rc(self.cost, other.cost))
            .max(rc(self.proc, other.proc))
    }
}

/// Per-probe cost of a cache with `key_len` key attributes: hashing +
/// bucket lookup, plus the expected cost of splicing the cached value tuples
/// on a hit.
pub fn probe_cost(model: &CostModel, key_len: usize, avg_entry_tuples: f64, miss_prob: f64) -> f64 {
    model.cache_probe(key_len) as f64
        + (1.0 - miss_prob) * avg_entry_tuples * model.cache_hit_per_tuple as f64
}

/// Per-maintenance-delta cost: one insert/delete call plus key extraction.
pub fn update_cost(model: &CostModel, key_len: usize) -> f64 {
    model.cache_update(1) as f64 + key_len as f64 * model.cache_probe_per_attr as f64
}

/// Compute the §4.1 triple from estimates.
pub fn benefit_cost(model: &CostModel, key_len: usize, e: &CandidateEstimates) -> BenefitCost {
    let pc = probe_cost(model, key_len, e.avg_entry_tuples(), e.miss_prob);
    let uc = update_cost(model, key_len);
    let proc = e.d_in * pc + e.miss_prob * (e.seg_proc + e.d_out * uc);
    let benefit = e.seg_proc - proc;
    let cost = uc * e.maint_rate;
    BenefitCost {
        benefit,
        cost,
        proc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn zero_miss_prob_maximizes_benefit() {
        let m = model();
        let base = CandidateEstimates {
            d_in: 100.0,
            d_out: 200.0,
            seg_proc: 100_000.0,
            miss_prob: 0.0,
            maint_rate: 10.0,
            expected_entries: 50.0,
        };
        let all_hit = benefit_cost(&m, 1, &base);
        let half = benefit_cost(
            &m,
            1,
            &CandidateEstimates {
                miss_prob: 0.5,
                ..base
            },
        );
        let all_miss = benefit_cost(
            &m,
            1,
            &CandidateEstimates {
                miss_prob: 1.0,
                ..base
            },
        );
        assert!(all_hit.benefit > half.benefit);
        assert!(half.benefit > all_miss.benefit);
        // At miss_prob 1 the cache only adds overhead: benefit < 0.
        assert!(all_miss.benefit < 0.0);
        // Maintenance cost is independent of miss probability.
        assert_eq!(all_hit.cost, all_miss.cost);
    }

    #[test]
    fn benefit_proc_duality() {
        // benefit = seg_proc − proc by construction.
        let m = model();
        let e = CandidateEstimates {
            d_in: 80.0,
            d_out: 400.0,
            seg_proc: 60_000.0,
            miss_prob: 0.3,
            maint_rate: 25.0,
            expected_entries: 10.0,
        };
        let bc = benefit_cost(&m, 2, &e);
        assert!((bc.benefit - (e.seg_proc - bc.proc)).abs() < 1e-9);
    }

    #[test]
    fn maintenance_scales_with_update_rate() {
        let m = model();
        let mut e = CandidateEstimates {
            d_in: 10.0,
            d_out: 10.0,
            seg_proc: 10_000.0,
            miss_prob: 0.1,
            maint_rate: 5.0,
            expected_entries: 5.0,
        };
        let low = benefit_cost(&m, 1, &e);
        e.maint_rate = 50.0;
        let high = benefit_cost(&m, 1, &e);
        assert!((high.cost / low.cost - 10.0).abs() < 1e-9);
        assert_eq!(
            low.benefit, high.benefit,
            "benefit independent of maint rate"
        );
        assert!(high.net() < low.net());
    }

    #[test]
    fn bigger_keys_cost_more() {
        let m = model();
        assert!(update_cost(&m, 3) > update_cost(&m, 1));
        assert!(probe_cost(&m, 3, 1.0, 0.5) > probe_cost(&m, 1, 1.0, 0.5));
    }

    #[test]
    fn avg_entry_tuples_guard() {
        let e = CandidateEstimates {
            d_in: 0.0,
            d_out: 10.0,
            ..Default::default()
        };
        assert_eq!(e.avg_entry_tuples(), 0.0, "no division by zero");
    }

    #[test]
    fn relative_change_detection() {
        let a = BenefitCost {
            benefit: 100.0,
            cost: 10.0,
            proc: 5.0,
        };
        let same = a;
        assert_eq!(a.max_relative_change(&same), 0.0);
        let drifted = BenefitCost {
            benefit: 130.0,
            cost: 10.0,
            proc: 5.0,
        };
        let ch = a.max_relative_change(&drifted);
        assert!(ch > 0.2 && ch < 0.3, "30/130 ≈ 0.23, got {ch}");
        assert!((BenefitCost::default()).max_relative_change(&BenefitCost::default()) == 0.0);
    }

    #[test]
    fn expensive_segment_cheap_cache_wins() {
        // The Figure 10 regime: segment processing is very expensive
        // (nested-loop joins), cache costs are tiny → huge net benefit.
        let m = model();
        let e = CandidateEstimates {
            d_in: 100.0,
            d_out: 100.0,
            seg_proc: 10_000_000.0,
            miss_prob: 0.2,
            maint_rate: 100.0,
            expected_entries: 20.0,
        };
        let bc = benefit_cost(&m, 1, &e);
        assert!(
            bc.net() > 0.5 * e.seg_proc,
            "cache must recover most of the work"
        );
    }
}
