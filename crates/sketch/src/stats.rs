//! Sliding-window statistics.
//!
//! Table 1 of the paper: *"Our online estimate for any statistic is the
//! average of its `W` most recent measurements"* (default `W = 10`, §7.1).
//! [`WindowStat`] implements exactly that — a ring buffer of the last `W`
//! observations with O(1) push and O(1) sum/average. [`RateEstimator`] tracks
//! tuples-per-unit-time over a sliding time horizon, used for `rate(R_i)` in
//! the `d_ij` estimate (Appendix A). [`Ewma`] is provided as an alternative
//! smoother for ablation experiments.

/// Ring buffer of the `W` most recent `f64` observations.
#[derive(Debug, Clone)]
pub struct WindowStat {
    buf: Vec<f64>,
    capacity: usize,
    next: usize,
    len: usize,
    sum: f64,
    total_observations: u64,
}

impl WindowStat {
    /// Create a window keeping the last `w` observations.
    ///
    /// # Panics
    /// Panics if `w == 0`.
    pub fn new(w: usize) -> Self {
        assert!(w > 0, "window size W must be positive");
        WindowStat {
            buf: vec![0.0; w],
            capacity: w,
            next: 0,
            len: 0,
            sum: 0.0,
            total_observations: 0,
        }
    }

    /// Record one observation, evicting the oldest if the window is full.
    pub fn push(&mut self, x: f64) {
        if self.len == self.capacity {
            self.sum -= self.buf[self.next];
        } else {
            self.len += 1;
        }
        self.buf[self.next] = x;
        self.sum += x;
        // Wrap with a compare instead of `%`: an integer division per
        // observation is measurable on per-tuple paths.
        self.next += 1;
        if self.next == self.capacity {
            self.next = 0;
        }
        self.total_observations += 1;
    }

    /// Average of the observations currently in the window; `None` if empty.
    pub fn average(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            Some(self.sum / self.len as f64)
        }
    }

    /// Average, defaulting to `default` when no observations exist yet.
    pub fn average_or(&self, default: f64) -> f64 {
        self.average().unwrap_or(default)
    }

    /// Sum of the observations in the window (`sum(δ_j)` in Appendix A).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations currently held (≤ W).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once at least `W` observations have been recorded — §4.5 step 2
    /// waits for this before trusting a profiled cache's statistics.
    pub fn is_warm(&self) -> bool {
        self.len == self.capacity
    }

    /// Window capacity `W`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime count of observations (not just those in the window).
    pub fn total_observations(&self) -> u64 {
        self.total_observations
    }

    /// Forget all observations (used when a pipeline is re-ordered and its
    /// statistics are invalidated, §4.5 step 5).
    pub fn clear(&mut self) {
        self.len = 0;
        self.next = 0;
        self.sum = 0.0;
        self.total_observations = 0;
    }

    /// Iterate over the observations currently in the window, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        let start = (self.next + self.capacity - self.len) % self.capacity;
        (0..self.len).map(move |i| self.buf[(start + i) % self.capacity])
    }
}

/// Tuples-per-unit-time estimator over a sliding horizon of virtual time.
///
/// Maintains `(timestamp, count)` buckets; `rate()` is total count in the
/// horizon divided by the horizon span. Timestamps are caller-supplied
/// (virtual nanoseconds from the cost clock), keeping everything
/// deterministic.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    horizon_ns: u64,
    events: std::collections::VecDeque<(u64, u64)>,
    total_in_horizon: u64,
}

impl RateEstimator {
    /// `horizon_ns`: how far back (in virtual ns) events are counted.
    pub fn new(horizon_ns: u64) -> Self {
        RateEstimator {
            horizon_ns: horizon_ns.max(1),
            events: std::collections::VecDeque::new(),
            total_in_horizon: 0,
        }
    }

    /// Record `count` events at virtual time `now_ns`.
    pub fn record(&mut self, now_ns: u64, count: u64) {
        self.events.push_back((now_ns, count));
        self.total_in_horizon += count;
        self.evict(now_ns);
    }

    fn evict(&mut self, now_ns: u64) {
        let cutoff = now_ns.saturating_sub(self.horizon_ns);
        while let Some(&(t, c)) = self.events.front() {
            if t < cutoff {
                self.events.pop_front();
                self.total_in_horizon -= c;
            } else {
                break;
            }
        }
    }

    /// Events per second at virtual time `now_ns`.
    pub fn rate_per_sec(&mut self, now_ns: u64) -> f64 {
        self.evict(now_ns);
        if self.events.is_empty() {
            return 0.0;
        }
        let oldest = self.events.front().unwrap().0;
        let span = (now_ns.saturating_sub(oldest)).max(1).min(self.horizon_ns);
        self.total_in_horizon as f64 * 1e9 / span as f64
    }

    /// Total events currently inside the horizon.
    pub fn count_in_horizon(&self) -> u64 {
        self.total_in_horizon
    }

    /// Reset all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
        self.total_in_horizon = 0;
    }
}

/// Exponentially weighted moving average, `v ← (1-α)·v + α·x`.
///
/// Not used by the paper's algorithms (which specify W-window averages) but
/// provided for the smoothing-ablation benches.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha ∈ (0, 1]`: weight of the newest observation.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current smoothed value.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current value or `default` when nothing has been observed.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_average_basic() {
        let mut w = WindowStat::new(3);
        assert!(w.average().is_none());
        assert!(w.is_empty());
        w.push(1.0);
        w.push(2.0);
        assert_eq!(w.average(), Some(1.5));
        assert!(!w.is_warm());
        w.push(3.0);
        assert!(w.is_warm());
        assert_eq!(w.average(), Some(2.0));
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = WindowStat::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.average(), Some(4.0)); // 3,4,5
        assert_eq!(w.sum(), 12.0);
        assert_eq!(w.total_observations(), 5);
        let obs: Vec<f64> = w.iter().collect();
        assert_eq!(obs, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn window_clear() {
        let mut w = WindowStat::new(2);
        w.push(10.0);
        w.clear();
        assert!(w.average().is_none());
        assert_eq!(w.average_or(7.0), 7.0);
        w.push(4.0);
        assert_eq!(w.average(), Some(4.0));
    }

    #[test]
    fn window_of_one() {
        let mut w = WindowStat::new(1);
        w.push(1.0);
        w.push(9.0);
        assert_eq!(w.average(), Some(9.0));
        assert!(w.is_warm());
    }

    #[test]
    #[should_panic(expected = "window size W must be positive")]
    fn window_zero_panics() {
        let _ = WindowStat::new(0);
    }

    #[test]
    fn window_sum_stays_accurate_after_many_evictions() {
        // Numerical drift check: running sum must track a fresh recomputation.
        let mut w = WindowStat::new(10);
        for i in 0..100_000u64 {
            w.push((i % 977) as f64 * 0.1);
        }
        let expect: f64 = w.iter().sum();
        assert!((w.sum() - expect).abs() < 1e-6);
    }

    #[test]
    fn rate_estimator_steady_stream() {
        let mut r = RateEstimator::new(1_000_000_000); // 1 s horizon
                                                       // One event every millisecond for 2 virtual seconds.
        for i in 0..2000u64 {
            r.record(i * 1_000_000, 1);
        }
        let rate = r.rate_per_sec(2_000_000_000);
        assert!(
            (rate - 1000.0).abs() / 1000.0 < 0.02,
            "expected ~1000/s, got {rate}"
        );
    }

    #[test]
    fn rate_estimator_forgets_old_events() {
        let mut r = RateEstimator::new(1_000_000_000);
        for i in 0..1000u64 {
            r.record(i * 1_000_000, 1);
        }
        // Fast-forward 10 virtual seconds with no events.
        let rate = r.rate_per_sec(11_000_000_000);
        assert_eq!(rate, 0.0);
        assert_eq!(r.count_in_horizon(), 0);
    }

    #[test]
    fn rate_estimator_burst_detection() {
        let mut r = RateEstimator::new(100_000_000); // 0.1 s horizon
        for i in 0..100u64 {
            r.record(i * 1_000_000, 1); // 1000/s baseline
        }
        let base = r.rate_per_sec(100_000_000);
        for i in 0..100u64 {
            r.record(100_000_000 + i * 50_000, 1); // 20,000/s burst
        }
        // The horizon at t=105ms still contains 95 baseline events plus the
        // 100 burst events over ~100ms, so the rate roughly doubles.
        let burst = r.rate_per_sec(105_000_000);
        assert!(burst > base * 1.5, "burst {burst} vs base {base}");
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert!(e.value().is_none());
        e.push(10.0);
        assert_eq!(e.value(), Some(10.0));
        for _ in 0..50 {
            e.push(2.0);
        }
        assert!((e.value().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn ewma_bad_alpha_panics() {
        let _ = Ewma::new(0.0);
    }
}
