//! Inline implementation of the FxHash algorithm.
//!
//! FxHash is the fast multiply-rotate hash used inside rustc (public-domain
//! algorithm, originally from Firefox). Join processing and cache probing
//! hash short keys (a handful of 64-bit values) millions of times per second;
//! the standard library's SipHash 1-3 would dominate the profile. Implementing
//! the ~30-line algorithm here keeps the workspace within the approved
//! dependency set (see DESIGN.md).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit seed constant: `(sqrt(5) - 1) / 2 * 2^64`, the golden-ratio
/// multiplier used by Fibonacci hashing.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Streaming FxHash hasher implementing [`std::hash::Hasher`].
///
/// Word-at-a-time multiply-rotate-xor. Not HashDoS-resistant; all hash-table
/// keys in this workspace come from internally generated tuple values, never
/// from an adversarial network peer.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with FxHash. Drop-in replacement for `std::collections::HashMap`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with FxHash. Drop-in replacement for `std::collections::HashSet`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash a single `u64`. Used for Bloom-filter index derivation and
/// direct-mapped cache bucket selection, where *all 64 output bits* must be
/// well mixed (bucket indexes are taken modulo small powers of two), so this
/// uses the splitmix64 finalizer rather than the one-round Fx mix.
#[inline]
pub fn fx_hash_u64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash an arbitrary byte slice with the streaming hasher.
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(fx_hash_bytes(b"hello"), fx_hash_bytes(b"hello"));
        assert_eq!(fx_hash_u64(7), fx_hash_u64(7));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(fx_hash_bytes(b"a"), fx_hash_bytes(b"b"));
        assert_ne!(fx_hash_u64(0), fx_hash_u64(1));
    }

    #[test]
    fn byte_streaming_matches_chunking() {
        // Hashing the same logical bytes in one call must equal hashing them
        // via write() once (we only guarantee same-call-pattern stability, but
        // a single write of the full slice is the pattern used everywhere).
        let a = fx_hash_bytes(b"abcdefgh12345678xyz");
        let b = fx_hash_bytes(b"abcdefgh12345678xyz");
        assert_eq!(a, b);
    }

    #[test]
    fn reasonable_distribution_low_bits() {
        // Bucket 1M sequential integers into 1024 buckets; no bucket should be
        // empty and no bucket should hold more than 4x the mean. Sequential
        // integers are the pathological case for weak hashes.
        let buckets = 1024usize;
        let mut counts = vec![0u32; buckets];
        for i in 0..1_000_000u64 {
            counts[(fx_hash_u64(i) % buckets as u64) as usize] += 1;
        }
        let mean = 1_000_000 / buckets as u32;
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "bucket {i} empty");
            assert!(c < mean * 4, "bucket {i} overloaded: {c} (mean {mean})");
        }
    }

    #[test]
    fn fxhashmap_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&21], 42);
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("x");
        assert!(s.contains("x"));
    }

    #[test]
    fn partial_tail_bytes_hash_differently() {
        assert_ne!(fx_hash_bytes(b"12345678a"), fx_hash_bytes(b"12345678b"));
        assert_ne!(fx_hash_bytes(b"1"), fx_hash_bytes(b"12"));
    }
}
