//! Bloom filters for distinct-value / cache-miss-probability estimation.
//!
//! Paper §4.3 and Appendix A: when a candidate cache `C_ijk` is *not* in use,
//! its miss probability is estimated by hashing each probe value (the
//! cache-key projection of tuples reaching `./_ij`) into a Bloom filter over
//! non-overlapping windows of `W_d` tuples, with `α·W_d` bits (`α ≥ 1`). If
//! `b` bits are set after `W_d` tuples, the miss-probability estimate is
//! `b / W_d`: intuitively `b` approximates the number of *distinct* keys seen,
//! and each distinct key misses exactly once before being cached.
//!
//! [`BloomFilter`] is a classic `k`-hash-function filter; it additionally
//! exposes [`BloomFilter::set_bits`] and two distinct-count estimators — the
//! paper's raw `b` count and the standard maximum-likelihood inversion
//! `-(m/k)·ln(1 - b/m)` — so callers can pick the estimator that matches the
//! regime (the raw count is what the paper specifies and is accurate while the
//! filter is sparse).

use crate::fx::fx_hash_u64;

/// A Bloom filter over `u64` pre-hashed items.
///
/// Callers hash their keys to a `u64` first (e.g. with
/// [`crate::fx_hash_bytes`]); the filter derives its `k` indexes from that
/// value with double hashing (`h1 + i·h2`), the standard Kirsch–Mitzenmacher
/// construction.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Number of bits (`m`), always a multiple of 64 and ≥ 64.
    m: usize,
    /// Number of hash functions (`k`).
    k: u32,
    set_bits: usize,
    insertions: u64,
}

impl BloomFilter {
    /// Create a filter with at least `m_bits` bits and `k` hash functions.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(m_bits: usize, k: u32) -> Self {
        assert!(k > 0, "Bloom filter needs at least one hash function");
        let words = m_bits.div_ceil(64).max(1);
        BloomFilter {
            bits: vec![0; words],
            m: words * 64,
            k,
            set_bits: 0,
            insertions: 0,
        }
    }

    /// Create a filter sized for the paper's miss-probability estimator:
    /// `alpha * window` bits (`alpha ≥ 1`) and a single hash function, so that
    /// the set-bit count `b` directly approximates the distinct count.
    pub fn for_miss_estimation(window: usize, alpha: usize) -> Self {
        BloomFilter::new(window.max(1) * alpha.max(1), 1)
    }

    /// Number of bits `m`.
    #[inline]
    pub fn num_bits(&self) -> usize {
        self.m
    }

    /// Number of hash functions `k`.
    #[inline]
    pub fn num_hashes(&self) -> u32 {
        self.k
    }

    /// Number of bits currently set (`b`).
    #[inline]
    pub fn set_bits(&self) -> usize {
        self.set_bits
    }

    /// Number of `insert` calls since construction / last `clear`.
    #[inline]
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    #[inline]
    fn indexes(&self, item: u64) -> impl Iterator<Item = usize> + '_ {
        let h1 = fx_hash_u64(item);
        let h2 = fx_hash_u64(h1 ^ 0x9e37_79b9_7f4a_7c15) | 1; // odd stride
        let m = self.m as u64;
        (0..self.k).map(move |i| (h1.wrapping_add(h2.wrapping_mul(i as u64)) % m) as usize)
    }

    /// Insert a (pre-hashed) item. Returns `true` if the item was *possibly
    /// new* — i.e. at least one of its bits was previously unset. A `false`
    /// return means the item was definitely-maybe seen before (standard Bloom
    /// semantics: false positives possible, false negatives impossible).
    pub fn insert(&mut self, item: u64) -> bool {
        self.insertions += 1;
        let mut newly_set = false;
        // Collect first to avoid borrowing issues with self.bits mutation.
        let idxs: SmallIdxVec = self.indexes(item).collect();
        for idx in idxs {
            let (w, b) = (idx / 64, idx % 64);
            let mask = 1u64 << b;
            if self.bits[w] & mask == 0 {
                self.bits[w] |= mask;
                self.set_bits += 1;
                newly_set = true;
            }
        }
        newly_set
    }

    /// Membership test: `false` means definitely absent.
    pub fn contains(&self, item: u64) -> bool {
        self.indexes(item).all(|idx| {
            let (w, b) = (idx / 64, idx % 64);
            self.bits[w] & (1u64 << b) != 0
        })
    }

    /// Reset to empty, keeping the allocation.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.set_bits = 0;
        self.insertions = 0;
    }

    /// The paper's raw distinct-count estimate: the number of set bits `b`
    /// (accurate while the filter is sparse; used with `k = 1` and
    /// `m = α·W_d`, Appendix A).
    #[inline]
    pub fn distinct_estimate_raw(&self) -> f64 {
        self.set_bits as f64 / self.k as f64
    }

    /// Maximum-likelihood distinct-count estimate
    /// `-(m/k) · ln(1 - b/m)`, which corrects for hash collisions as the
    /// filter fills up (Swamidass & Baldi).
    pub fn distinct_estimate_mle(&self) -> f64 {
        let m = self.m as f64;
        let b = self.set_bits as f64;
        if b >= m {
            // Saturated filter: every insertion may have been distinct.
            return self.insertions as f64;
        }
        -(m / self.k as f64) * (1.0 - b / m).ln()
    }

    /// Estimated false-positive probability at the current fill level:
    /// `(b/m)^k`.
    pub fn false_positive_rate(&self) -> f64 {
        (self.set_bits as f64 / self.m as f64).powi(self.k as i32)
    }
}

/// Fixed-capacity index vector used for hash indexes (k ≤ 16 in all our
/// configurations); avoids allocation in the hot insert path.
#[derive(Debug)]
pub struct SmallIdxVec {
    buf: [usize; 16],
    len: usize,
}

impl FromIterator<usize> for SmallIdxVec {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut v = SmallIdxVec {
            buf: [0; 16],
            len: 0,
        };
        for x in iter {
            assert!(
                v.len < 16,
                "Bloom filter supports at most 16 hash functions"
            );
            v.buf[v.len] = x;
            v.len += 1;
        }
        v
    }
}

impl IntoIterator for SmallIdxVec {
    type Item = usize;
    type IntoIter = std::iter::Take<std::array::IntoIter<usize, 16>>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().take(self.len)
    }
}

/// Windowed miss-probability estimator (paper Appendix A), with one
/// refinement: **two Bloom generations**. A probe key counts as a (future)
/// miss only if it is new to *both* the current and the previous `W_d`-tuple
/// window. The paper's single-window estimate systematically overestimates
/// the miss probability of keys that recur just past a window boundary — in
/// particular the guaranteed re-probe of every key when its tuple expires
/// from a sliding window (Figure 6's "one opportunity for a cache hit"),
/// which the single window almost always misclassifies as distinct.
///
/// Feed it every probe value seen by a (virtual) `CacheLookup` operator;
/// every `W_d` tuples it closes an observation (new keys ÷ probes) and
/// rotates generations. The average of the last `W` observations (kept by
/// the caller in a [`crate::stats::WindowStat`]) is the online estimate.
#[derive(Debug, Clone)]
pub struct MissProbEstimator {
    current: BloomFilter,
    previous: BloomFilter,
    window: usize,
    seen: usize,
    new_keys: usize,
    last_observation: Option<f64>,
}

impl MissProbEstimator {
    /// `window` = `W_d` tuples per observation; `alpha` = bits-per-tuple
    /// multiplier (`α ≥ 1`).
    pub fn new(window: usize, alpha: usize) -> Self {
        MissProbEstimator {
            current: BloomFilter::for_miss_estimation(window, alpha),
            previous: BloomFilter::for_miss_estimation(window, alpha),
            window: window.max(1),
            seen: 0,
            new_keys: 0,
            last_observation: None,
        }
    }

    /// Observe one probe key (pre-hashed). Returns `Some(miss_prob)` when a
    /// window of `W_d` tuples completes.
    pub fn observe(&mut self, key_hash: u64) -> Option<f64> {
        let seen_before = self.previous.contains(key_hash) || self.current.contains(key_hash);
        self.current.insert(key_hash);
        if !seen_before {
            self.new_keys += 1;
        }
        self.seen += 1;
        if self.seen >= self.window {
            let obs = (self.new_keys as f64 / self.seen as f64).clamp(0.0, 1.0);
            std::mem::swap(&mut self.current, &mut self.previous);
            self.current.clear();
            self.seen = 0;
            self.new_keys = 0;
            self.last_observation = Some(obs);
            Some(obs)
        } else {
            None
        }
    }

    /// Most recent completed observation, if any.
    pub fn last_observation(&self) -> Option<f64> {
        self.last_observation
    }

    /// Number of tuples per observation window (`W_d`).
    pub fn window(&self) -> usize {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 3);
        for i in 0..100 {
            assert!(!f.contains(i));
        }
        assert_eq!(f.set_bits(), 0);
        assert_eq!(f.distinct_estimate_raw(), 0.0);
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(4096, 4);
        for i in 0..200u64 {
            f.insert(i * 7919);
        }
        for i in 0..200u64 {
            assert!(f.contains(i * 7919), "false negative for {i}");
        }
    }

    #[test]
    fn insert_reports_novelty() {
        let mut f = BloomFilter::new(1 << 16, 2);
        assert!(f.insert(42));
        assert!(!f.insert(42), "re-insert must not set new bits");
    }

    #[test]
    fn distinct_estimates_track_truth_when_sparse() {
        let mut f = BloomFilter::new(1 << 14, 1);
        let n = 500u64;
        for i in 0..n {
            f.insert(i);
            f.insert(i); // duplicates must not inflate the estimate
        }
        let raw = f.distinct_estimate_raw();
        let mle = f.distinct_estimate_mle();
        assert!(
            (raw - n as f64).abs() / (n as f64) < 0.05,
            "raw estimate {raw} vs true {n}"
        );
        assert!(
            (mle - n as f64).abs() / (n as f64) < 0.05,
            "mle estimate {mle} vs true {n}"
        );
    }

    #[test]
    fn mle_corrects_for_collisions_when_dense() {
        // Fill to ~50%: raw undercounts, MLE should stay within 5%.
        let mut f = BloomFilter::new(1024, 1);
        let n = 700u64;
        for i in 0..n {
            f.insert(i.wrapping_mul(0x2545F4914F6CDD1D));
        }
        let mle = f.distinct_estimate_mle();
        assert!(
            (mle - n as f64).abs() / (n as f64) < 0.10,
            "mle {mle} vs true {n}"
        );
        assert!(f.distinct_estimate_raw() < n as f64);
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(256, 2);
        f.insert(1);
        f.insert(2);
        assert!(f.set_bits() > 0);
        f.clear();
        assert_eq!(f.set_bits(), 0);
        assert_eq!(f.insertions(), 0);
        assert!(!f.contains(1));
    }

    #[test]
    fn saturated_mle_falls_back_to_insertions() {
        let mut f = BloomFilter::new(64, 4);
        for i in 0..10_000u64 {
            f.insert(i);
        }
        assert_eq!(f.set_bits(), 64);
        assert_eq!(f.distinct_estimate_mle(), 10_000.0);
        assert!(f.false_positive_rate() > 0.99);
    }

    #[test]
    fn miss_prob_all_distinct_is_one() {
        let mut e = MissProbEstimator::new(100, 8);
        let mut got = None;
        for i in 0..100u64 {
            if let Some(o) = e.observe(fx_hash_u64(i)) {
                got = Some(o);
            }
        }
        let miss = got.expect("window should have closed");
        assert!(
            miss > 0.9,
            "all-distinct stream must estimate near 1.0, got {miss}"
        );
    }

    #[test]
    fn miss_prob_single_value_is_low() {
        let mut e = MissProbEstimator::new(100, 8);
        let mut got = None;
        for _ in 0..100 {
            if let Some(o) = e.observe(fx_hash_u64(777)) {
                got = Some(o);
            }
        }
        let miss = got.expect("window should have closed");
        assert!(
            miss < 0.05,
            "constant stream must estimate near 1/W_d, got {miss}"
        );
    }

    #[test]
    fn miss_prob_multiplicity_r() {
        // r repetitions of each key => miss prob ~ 1/r.
        for r in [2usize, 5, 10] {
            let mut e = MissProbEstimator::new(1000, 8);
            let mut got = None;
            for i in 0..1000usize {
                if let Some(o) = e.observe(fx_hash_u64((i / r) as u64)) {
                    got = Some(o);
                }
            }
            let miss = got.unwrap();
            let expect = 1.0 / r as f64;
            assert!(
                (miss - expect).abs() < 0.05,
                "r={r}: estimated {miss}, expected {expect}"
            );
        }
    }

    #[test]
    fn estimator_resets_between_windows() {
        let mut e = MissProbEstimator::new(10, 8);
        // First window: constant key.
        for _ in 0..10 {
            e.observe(1);
        }
        let first = e.last_observation().unwrap();
        assert!(first <= 0.2);
        // Second window: all distinct; the previous window's bits must be gone.
        let mut second = None;
        for i in 0..10u64 {
            if let Some(o) = e.observe(fx_hash_u64(1000 + i)) {
                second = Some(o);
            }
        }
        assert!(second.unwrap() > 0.8);
    }
}
