//! # acq-sketch — statistics substrate for A-Caching
//!
//! Small, dependency-free building blocks used throughout the reproduction of
//! *Adaptive Caching for Continuous Queries* (ICDE 2005):
//!
//! * [`fx`] — an inline implementation of the FxHash algorithm (the fast,
//!   non-cryptographic hash popularized by rustc), so hot join/cache paths
//!   never pay SipHash costs. See DESIGN.md for the dependency justification.
//! * [`bloom`] — Bloom filters, used by the Profiler to estimate the number of
//!   distinct cache-key values in a probe stream, and hence the cache miss
//!   probability (paper §4.3 / Appendix A).
//! * [`stats`] — `W`-window sliding statistics ("our online estimate for any
//!   statistic is the average of its `W` most recent measurements", Table 1),
//!   rate estimators, and exponentially weighted moving averages.

#![warn(missing_docs)]

pub mod bloom;
pub mod fx;
pub mod stats;

pub use bloom::BloomFilter;
pub use fx::{fx_hash_bytes, fx_hash_u64, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use stats::{Ewma, RateEstimator, WindowStat};
