//! Network monitoring: adaptivity under a traffic burst.
//!
//! A security team correlates three streams over sliding windows:
//!
//! * `FLOWS(src)`        — sampled flow records per source host,
//! * `DNS(src, domain)`  — DNS lookups joining flows to domains,
//! * `ALERTS(domain)`    — threat-intel hits per domain (high volume).
//!
//! The continuous query `FLOWS ⋈ DNS ⋈ ALERTS` normally sees alerts dominate
//! (so caching FLOWS⋈DNS for the alert pipeline wins). A scanning attack then
//! floods `FLOWS` at 20× — the engine must notice, via its online statistics,
//! that the cached plan is now wrong and re-place caches for the new regime.
//!
//! Run with: `cargo run --release --example network_monitoring`

use acq::engine::{AdaptiveJoinEngine, EngineConfig, ReoptInterval, SelectionStrategy};
use acq::EnumerationConfig;
use acq_gen::column::ColumnGen;
use acq_gen::spec::{Burst, StreamSpec, Workload};
use acq_stream::{AttrRef, JoinPredicate, QuerySchema, RelId, RelationSchema};

fn main() {
    // Schema: FLOWS(src), DNS(src, domain), ALERTS(domain).
    let query = QuerySchema::new(
        vec![
            RelationSchema::new("FLOWS", &["src"]),
            RelationSchema::new("DNS", &["src", "domain"]),
            RelationSchema::new("ALERTS", &["domain"]),
        ],
        vec![
            JoinPredicate::new(AttrRef::new(0, 0), AttrRef::new(1, 0)),
            JoinPredicate::new(AttrRef::new(1, 1), AttrRef::new(2, 0)),
        ],
    );

    // 100 active hosts / domains, cycling; alerts arrive 5× as fast with
    // each domain flagged 5× in a row. Then the attack: FLOWS ×20.
    let cyc = |mult: u64| ColumnGen::Seq {
        multiplicity: mult,
        stride: 1,
        offset: 0,
        domain: 100,
    };
    let workload = Workload::new(
        vec![
            StreamSpec::new(0, 1.0, 100, vec![cyc(1)]),
            StreamSpec::new(1, 1.0, 100, vec![cyc(1), cyc(1)]),
            StreamSpec::new(2, 5.0, 500, vec![cyc(5)]),
        ],
        7,
    )
    .with_burst(Burst {
        rel: RelId(0),
        start_after_elements: 700_000,
        end_after_elements: u64::MAX,
        factor: 20.0,
    });
    let updates = workload.generate(1_500_000);

    // Fast-reacting engine: re-optimize every 10k tuples, globally-consistent
    // caches allowed (the post-burst best plan needs one).
    let config = EngineConfig {
        reopt_interval: ReoptInterval::Tuples(10_000),
        selection: SelectionStrategy::Exhaustive,
        enumeration: EnumerationConfig {
            enable_global: true,
            max_candidates: 6,
            ..Default::default()
        },
        ..Default::default()
    };
    // Initial pipeline orders: alerts join DNS first, then flows — the
    // natural plan while alerts dominate.
    use acq_mjoin::plan::{PipelineOrder, PlanOrders};
    let orders = PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ]);
    let mut engine = AdaptiveJoinEngine::with_config(query.clone(), orders, config);

    println!(
        "correlating flows × dns × alerts ({} updates)…\n",
        updates.len()
    );
    let mut last_caches = Vec::new();
    let mut last_t = 0u64;
    let mut last_ns = 0u64;
    for (i, u) in updates.iter().enumerate() {
        engine.process(u);
        if (i + 1) % 250_000 == 0 {
            let c = engine.counters();
            let ns = engine.core().now_ns();
            let rate = (c.tuples_processed - last_t) as f64 * 1e9 / (ns - last_ns).max(1) as f64;
            last_t = c.tuples_processed;
            last_ns = ns;
            let caches = engine.used_caches();
            let changed = if caches != last_caches {
                "  ← plan changed"
            } else {
                ""
            };
            println!(
                "after {:>7} updates: {:>7.0} t/s, caches {:?}{}",
                i + 1,
                rate,
                caches,
                changed
            );
            last_caches = caches;
        }
    }

    let c = engine.counters();
    println!(
        "\nre-optimizations: {}, demotions: {}",
        c.reoptimizations, c.demotions
    );
    println!(
        "cache hit rate: {:.1}%",
        100.0 * c.cache_hits as f64 / (c.cache_hits + c.cache_misses).max(1) as f64
    );
    assert!(engine.check_consistency_invariant().is_empty());
    println!("all caches consistent with their invariants ✓");
}
