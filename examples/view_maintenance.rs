//! Materialized-view maintenance with adaptive caching.
//!
//! The paper's stream-join class "captures … conventional maintenance of
//! materialized join views" (§1): a view `ORDERS ⋈ CUSTOMERS ⋈ REGIONS` is a
//! 3-way join whose inputs are streams of relation updates (inserts *and*
//! deletes — no windows here, the application issues explicit deletes). The
//! engine's output deltas maintain the view incrementally; we mirror them
//! into a materialized multiset and audit it against a from-scratch join.
//!
//! Run with: `cargo run --release --example view_maintenance`

use acq::engine::AdaptiveJoinEngine;
use acq_mjoin::oracle::{canonical_rows, Oracle};
use acq_stream::{
    AttrRef, JoinPredicate, Op, QuerySchema, RelId, RelationSchema, TupleData, Update,
};
use std::collections::HashMap;

fn main() {
    // ORDERS(cust, amount), CUSTOMERS(cust, region), REGIONS(region).
    let query = QuerySchema::new(
        vec![
            RelationSchema::new("ORDERS", &["cust", "amount"]),
            RelationSchema::new("CUSTOMERS", &["cust", "region"]),
            RelationSchema::new("REGIONS", &["region"]),
        ],
        vec![
            JoinPredicate::new(AttrRef::new(0, 0), AttrRef::new(1, 0)),
            JoinPredicate::new(AttrRef::new(1, 1), AttrRef::new(2, 0)),
        ],
    );

    let mut engine = AdaptiveJoinEngine::new(query.clone());
    let mut oracle = Oracle::new(query);

    // The materialized view: multiset of (order, customer, region) rows.
    let mut view: HashMap<Vec<TupleData>, i64> = HashMap::new();

    // A deterministic OLTP-ish update mix: customer churn, order churn,
    // occasional region changes. 60 customers across 6 regions; order values
    // cycle.
    let mut state = 0x5EEDu64;
    let mut rng = move |m: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % m
    };
    let mut live_orders: Vec<(i64, i64)> = Vec::new();
    let mut updates: Vec<Update> = Vec::new();
    // Seed dimension tables.
    for region in 0..6i64 {
        updates.push(Update::insert(RelId(2), TupleData::ints(&[region]), 0));
    }
    for cust in 0..60i64 {
        updates.push(Update::insert(
            RelId(1),
            TupleData::ints(&[cust, cust % 6]),
            0,
        ));
    }
    for ts in 1..80_000u64 {
        if !live_orders.is_empty() && rng(3) == 0 {
            let idx = rng(live_orders.len() as u64) as usize;
            let (cust, amount) = live_orders.swap_remove(idx);
            updates.push(Update::delete(
                RelId(0),
                TupleData::ints(&[cust, amount]),
                ts,
            ));
        } else {
            let cust = rng(60) as i64;
            let amount = rng(1000) as i64;
            live_orders.push((cust, amount));
            updates.push(Update::insert(
                RelId(0),
                TupleData::ints(&[cust, amount]),
                ts,
            ));
        }
        // Occasionally a customer moves region: delete + insert.
        if rng(500) == 0 {
            let cust = rng(60) as i64;
            updates.push(Update::delete(
                RelId(1),
                TupleData::ints(&[cust, cust % 6]),
                ts,
            ));
            updates.push(Update::insert(
                RelId(1),
                TupleData::ints(&[cust, cust % 6]),
                ts,
            ));
        }
    }

    println!(
        "maintaining ORDERS ⋈ CUSTOMERS ⋈ REGIONS over {} updates…",
        updates.len()
    );
    for u in &updates {
        for (op, composite) in engine.process(u) {
            let row = canonical_rows(&composite, 3);
            let e = view.entry(row).or_insert(0);
            *e += op.sign();
            if *e == 0 {
                view.remove(&canonical_rows(&composite, 3));
            }
        }
        oracle.apply_and_delta(u);
    }

    // Audit: the incrementally maintained view equals a from-scratch join.
    let fresh = oracle.full_join();
    let mut fresh_counts: HashMap<Vec<TupleData>, i64> = HashMap::new();
    for row in fresh {
        *fresh_counts.entry(row).or_insert(0) += 1;
    }
    assert_eq!(view, fresh_counts, "view drifted from base tables!");

    let c = engine.counters();
    println!("view rows             {}", view.values().sum::<i64>());
    println!("distinct view rows    {}", view.len());
    println!(
        "processing rate       {:.0} updates/s",
        engine.processing_rate()
    );
    println!("caches in use         {:?}", engine.used_caches());
    println!(
        "cache hits/misses     {} / {}",
        c.cache_hits, c.cache_misses
    );
    println!("\nincremental view == from-scratch join ✓");

    // Deletes kept every cache consistent too (Definition 3.1, audited by
    // recomputation).
    assert!(engine.check_consistency_invariant().is_empty());
    let _ = Op::Insert;
}
