//! The MJoin ↔ XJoin spectrum on one workload.
//!
//! Runs the same 4-way star-join update stream through four executors —
//! plain MJoin, fully materialized XJoin, A-Caching with the prefix
//! invariant, and A-Caching with globally-consistent caches — and compares
//! throughput, state size, and (identical) outputs. A compact version of the
//! paper's Figure 11 experiment you can point at your own workload.
//!
//! Run with: `cargo run --release --example plan_spectrum`

use acq::engine::AdaptiveJoinEngine;
use acq_bench::plans::{best_mjoin_orders, config_g, config_p, make_stats};
use acq_bench::runner::{run_engine, run_mjoin, run_xjoin};
use acq_gen::table2::sample_point;
use acq_mjoin::mjoin::MJoin;
use acq_mjoin::xjoin::{best_tree, XJoin};
use acq_stream::QuerySchema;

fn main() {
    let q = QuerySchema::star(4);
    let point = sample_point("D1").expect("table 2 point");
    let window = 200;
    println!(
        "workload: Table 2 point {} (rates {:?}, pairwise selectivities {:?})\n",
        point.name, point.rates, point.sel
    );
    let updates = point.workload(window, 99).generate(120_000);
    let stats = make_stats(&point.rates, &[window; 4], point.sel_matrix());
    let orders = best_mjoin_orders(&q, &stats);

    let mut m = MJoin::new(q.clone(), orders.clone());
    let sm = run_mjoin(&mut m, &updates, 0.25);

    let tree = best_tree(&q, &stats, None).expect("tree");
    println!("best XJoin tree: {tree}");
    let mut x = XJoin::new(q.clone(), tree);
    let sx = run_xjoin(&mut x, &updates, 0.25);

    let mut pe = AdaptiveJoinEngine::with_config(q.clone(), orders.clone(), config_p());
    let sp = run_engine(&mut pe, &updates, 0.25);

    let mut ge = AdaptiveJoinEngine::with_config(q.clone(), orders, config_g(6));
    let sg = run_engine(&mut ge, &updates, 0.25);

    println!(
        "\n{:<28} {:>12} {:>14} {:>10}",
        "plan", "tuples/s", "state bytes", "outputs"
    );
    println!(
        "{:<28} {:>12.0} {:>14} {:>10}",
        "M  (best MJoin)", sm.rate, 0, sm.outputs
    );
    println!(
        "{:<28} {:>12.0} {:>14} {:>10}",
        "X  (best XJoin)",
        sx.rate,
        x.materialized_bytes(),
        sx.outputs
    );
    println!(
        "{:<28} {:>12.0} {:>14} {:>10}",
        "P  (prefix caches)",
        sp.rate,
        pe.cache_memory_bytes(),
        sp.outputs
    );
    println!(
        "{:<28} {:>12.0} {:>14} {:>10}",
        "G  (globally-consistent)",
        sg.rate,
        ge.cache_memory_bytes(),
        sg.outputs
    );
    println!("\nP used {:?}", pe.used_caches());
    println!("G used {:?}", ge.used_caches());

    assert_eq!(sm.outputs, sx.outputs, "all plans compute the same deltas");
    assert_eq!(sm.outputs, sp.outputs);
    assert_eq!(sm.outputs, sg.outputs);
    println!("\nall four plans emitted identical result deltas ✓");
}
