//! Quickstart: a 3-way windowed stream join with adaptive caching.
//!
//! Builds the paper's running example `R(A) ⋈_A S(A,B) ⋈_B T(B)`, feeds it a
//! synthetic update stream where `∆T` arrives 5× faster with repeating join
//! values (so an R⋈S cache pays off), and shows what the engine did.
//!
//! Run with: `cargo run --release --example quickstart`

use acq::engine::AdaptiveJoinEngine;
use acq_gen::spec::chain3_default;
use acq_stream::QuerySchema;

fn main() {
    // The query: R(A) ⋈ S(A,B) ⋈ T(B). `chain3()` declares the two equijoin
    // predicates; every relation is a sliding window over an update stream.
    let query = QuerySchema::chain3();

    // A fully adaptive engine with the paper's defaults: W = 10 statistics
    // windows, re-optimization every 2 virtual seconds, exhaustive cache
    // selection while the candidate set is small.
    let mut engine = AdaptiveJoinEngine::new(query);

    // Synthetic workload (§7.1 of the paper): windows of 100 tuples over
    // append-only streams; T.B values repeat 5× and ∆T runs 5× faster.
    let workload = chain3_default(5, 100, 42);
    let updates = workload.generate(60_000);
    println!("processing {} windowed updates …", updates.len());

    let mut results = 0u64;
    for u in &updates {
        // Each call returns the *delta* to the 3-way join result: insertions
        // when new tuples complete a join, deletions when window expiry
        // removes them.
        results += engine.process(u).len() as u64;
    }

    let c = engine.counters();
    println!("\n── what happened ──");
    println!("updates processed      {}", c.tuples_processed);
    println!("join result deltas     {results}");
    println!("virtual time           {:.2} s", engine.core().now_secs());
    println!(
        "processing rate        {:.0} tuples/s",
        engine.processing_rate()
    );
    println!("re-optimizations       {}", c.reoptimizations);
    println!(
        "cache probes           {} hits / {} misses",
        c.cache_hits, c.cache_misses
    );
    println!("caches in use          {:?}", engine.used_caches());
    println!(
        "cache memory           {} bytes",
        engine.cache_memory_bytes()
    );

    // The consistency invariant (Definition 3.1) can be audited at any time.
    let violations = engine.check_consistency_invariant();
    assert!(violations.is_empty(), "{violations:?}");
    println!("\nconsistency invariant  OK (checked by full recomputation)");
}
